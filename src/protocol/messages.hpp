// Protocol messages (PBFT normal case, checkpointing, view change) and
// their canonical wire encoding.
//
// Authentication convention: every message is encoded as
//     [type tag | body | authenticator]
// and MACs/authenticators are computed over [type tag | body] — the
// "authenticated bytes". decode_message() reports where the authenticated
// prefix ends (body_size) so receivers can verify without re-encoding.
#pragma once

#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "crypto/authenticator.hpp"
#include "crypto/provider.hpp"
#include "protocol/types.hpp"

namespace copbft::protocol {

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kPrePrepare = 2,
  kPrepare = 3,
  kCommit = 4,
  kCheckpoint = 5,
  kReply = 6,
  kViewChange = 7,
  kNewView = 8,
  kFetch = 9,
  kStateRequest = 10,
  kStateReply = 11,
};

/// Request flags.
constexpr std::uint8_t kFlagReadOnly = 0x01;

/// Client operation submitted for total ordering.
struct Request {
  ClientId client = 0;
  RequestId id = 0;
  std::uint8_t flags = 0;
  Bytes payload;
  /// Client MACs towards all replicas.
  crypto::Authenticator auth;

  std::uint64_t key() const { return request_key(client, id); }
};

/// Leader's proposal: assigns `seq` to a batch of requests. An empty batch
/// is a no-op instance (used to fill sequence-number gaps, paper §4.2.1).
struct PrePrepare {
  ViewId view = 0;
  SeqNum seq = 0;
  /// Digest over the canonical encoding of `requests`.
  crypto::Digest digest;
  std::vector<Request> requests;
  crypto::Authenticator auth;
};

struct Prepare {
  ViewId view = 0;
  SeqNum seq = 0;
  crypto::Digest digest;
  ReplicaId replica = 0;
  crypto::Authenticator auth;
};

struct Commit {
  ViewId view = 0;
  SeqNum seq = 0;
  crypto::Digest digest;
  ReplicaId replica = 0;
  crypto::Authenticator auth;
};

/// Checkpoint vote: `digest` covers the service state after executing
/// everything up to and including `seq`.
struct CheckpointMsg {
  SeqNum seq = 0;
  crypto::Digest digest;
  ReplicaId replica = 0;
  crypto::Authenticator auth;
};

struct Reply {
  ViewId view = 0;
  ClientId client = 0;
  RequestId id = 0;
  ReplicaId replica = 0;
  Bytes result;
  crypto::Authenticator auth;
};

/// Certificate that an instance reached the prepared state; carried in
/// view-change messages so the new leader can re-propose it.
struct PreparedProof {
  ViewId view = 0;
  SeqNum seq = 0;
  crypto::Digest digest;
  std::vector<Request> requests;
};

struct ViewChange {
  ViewId new_view = 0;
  /// Last stable checkpoint of the sender's slice.
  SeqNum stable_seq = 0;
  crypto::Digest stable_digest;
  ReplicaId replica = 0;
  std::vector<PreparedProof> prepared;
  crypto::Authenticator auth;
};

struct NewView {
  ViewId view = 0;
  ReplicaId replica = 0;
  /// Re-proposals for every in-window sequence number above the stable
  /// checkpoint (prepared batches, no-ops for gaps).
  std::vector<PrePrepare> pre_prepares;
  crypto::Authenticator auth;
};

/// Asks the proposer of instance (view, seq) to retransmit its
/// PRE-PREPARE; sent by a replica that holds votes for the instance but
/// missed the proposal (lossy network).
struct Fetch {
  ViewId view = 0;
  SeqNum seq = 0;
  ReplicaId replica = 0;
  crypto::Authenticator auth;
};

/// Asks a peer for its latest stable checkpoint at or above `min_seq`
/// (service-state snapshot plus certificate), delivered as a sequence of
/// chunked StateReply frames. Sent by a replica stranded past its peers'
/// log truncation (checkpoint-based state transfer).
struct StateRequest {
  SeqNum min_seq = 0;
  ReplicaId replica = 0;
  crypto::Authenticator auth;
};

/// One chunk of a checkpoint transfer. Every chunk repeats the header
/// (seq, composite digest, certificate voters) so the receiver can count
/// f+1 matching attestations before committing to an install, and so
/// chunks arriving out of order are self-describing.
struct StateReply {
  SeqNum seq = 0;
  /// Composite checkpoint digest the cluster agreed on at `seq`.
  crypto::Digest digest;
  /// Replicas whose matching votes made the checkpoint stable (>= 2f+1).
  /// With MAC authenticators this is a claim, not a transferable proof;
  /// the receiver cross-checks it against f+1 independent peer replies.
  std::vector<ReplicaId> certificate;
  std::uint32_t chunk = 0;
  std::uint32_t chunk_count = 0;
  Bytes data;
  ReplicaId replica = 0;
  crypto::Authenticator auth;
};

using Message =
    std::variant<Request, PrePrepare, Prepare, Commit, CheckpointMsg, Reply,
                 ViewChange, NewView, Fetch, StateRequest, StateReply>;

MsgType type_of(const Message& msg);
const char* type_name(MsgType type);

/// Replica id the message claims to originate from (clients for kRequest).
crypto::KeyNodeId sender_node(const Message& msg);

/// Mutable access to the top-level authenticator (for hosts that attach
/// authentication after the protocol core produced the message).
crypto::Authenticator& authenticator_of(Message& msg);
const crypto::Authenticator& authenticator_of(const Message& msg);

/// Canonical full encoding: [tag | body | authenticator].
Bytes encode_message(const Message& msg);

/// Encodes only the authenticated prefix [tag | body]; hosts append the
/// authenticator after computing MACs over these bytes.
Bytes encode_authenticated_part(const Message& msg);

/// Number of leading bytes of encode_message() covered by authentication.
std::size_t authenticated_size(const Message& msg);

/// Total encoded size without materializing the bytes (used by the
/// simulator's bandwidth accounting; tested to match encode_message).
std::size_t encoded_size(const Message& msg);

struct Decoded {
  Message msg;
  /// Length of the authenticated prefix within the input bytes.
  std::size_t body_size = 0;
};

/// Parses a full frame; nullopt on any malformed input (never throws, never
/// reads out of bounds).
std::optional<Decoded> decode_message(ByteSpan data);

/// The bytes a client MACs for a request: the request's [tag | body].
Bytes request_authenticated_bytes(const Request& req);

/// Digest identifying a batch (content of a PrePrepare).
crypto::Digest batch_digest(const crypto::CryptoProvider& crypto,
                            const std::vector<Request>& requests);

}  // namespace copbft::protocol
