// Explicit little-endian wire serialization primitives.
//
// All protocol messages are encoded with these; the encoding is canonical
// (one valid encoding per message), which lets MACs and digests be computed
// over encoded bodies.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/authenticator.hpp"
#include "crypto/digest.hpp"

namespace copbft::protocol {

class WireWriter {
 public:
  explicit WireWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }

  /// Length-prefixed (u32) byte string.
  void bytes(ByteSpan data) {
    u32(static_cast<std::uint32_t>(data.size()));
    append(out_, data);
  }

  /// Fixed-size raw bytes (no length prefix).
  void raw(ByteSpan data) { append(out_, data); }

  void digest(const crypto::Digest& d) { raw(d.span()); }
  void mac(const crypto::Mac& m) { raw(m.span()); }

  void authenticator(const crypto::Authenticator& a) {
    u16(static_cast<std::uint16_t>(a.entries.size()));
    for (const auto& e : a.entries) {
      u32(e.recipient);
      mac(e.mac);
    }
  }

  std::size_t size() const { return out_.size(); }

 private:
  void put_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) out_.push_back(static_cast<Byte>(v >> (8 * i)));
  }

  Bytes& out_;
};

/// Bounds-checked reader; after any failed read, ok() is false and all
/// subsequent reads return zero values.
class WireReader {
 public:
  explicit WireReader(ByteSpan data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(get_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }

  Bytes bytes() {
    std::uint32_t n = u32();
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  crypto::Digest digest() {
    crypto::Digest d;
    fixed(d.bytes.data(), d.bytes.size());
    return d;
  }

  crypto::Mac mac() {
    crypto::Mac m;
    fixed(m.bytes.data(), m.bytes.size());
    return m;
  }

  crypto::Authenticator authenticator() {
    crypto::Authenticator a;
    std::uint16_t n = u16();
    // Entry count is bounded by what the remaining bytes can hold, which
    // caps allocation from malformed input.
    if (!ok_ || (data_.size() - pos_) / 20 < n) {
      ok_ = false;
      return a;
    }
    a.entries.reserve(n);
    for (std::uint16_t i = 0; i < n && ok_; ++i) {
      crypto::AuthenticatorEntry e;
      e.recipient = u32();
      e.mac = mac();
      a.entries.push_back(e);
    }
    return a;
  }

  bool ok() const { return ok_; }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }

 private:
  std::uint64_t get_le(int n) {
    if (!ok_ || data_.size() - pos_ < static_cast<std::size_t>(n)) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i)
      v |= std::uint64_t{data_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  void fixed(Byte* dst, std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return;
    }
    std::copy_n(data_.data() + pos_, n, dst);
    pos_ += n;
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace copbft::protocol
