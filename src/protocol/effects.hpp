// Effects emitted by the sans-IO protocol core.
//
// The core never touches threads, sockets or clocks; it appends effects to
// an internal buffer that the host (COP pillar, TOP/SMaRt logic stage, or
// the simulator) drains via take_effects(). Outbound messages carry *no*
// authenticator yet — where outgoing MACs are computed (in-place vs. in
// dedicated authentication threads) is exactly one of the architectural
// choices the paper compares, so it belongs to the host.
#pragma once

#include <memory>
#include <variant>
#include <vector>

#include "protocol/messages.hpp"

namespace copbft::protocol {

/// Send one protocol message to a single replica.
struct SendTo {
  ReplicaId to = 0;
  Message msg;
};

/// Send one protocol message to every other replica.
struct Broadcast {
  Message msg;
};

/// A consensus instance committed: `requests` hold the agreed batch (empty
/// for a no-op instance). Instances may complete out of order; the
/// execution stage enforces the total order by `seq`.
struct Deliver {
  SeqNum seq = 0;
  ViewId view = 0;
  std::shared_ptr<const std::vector<Request>> requests;
};

/// A checkpoint gathered a stable certificate (2f+1 matching votes).
/// Emitted only by the core that ran the agreement; the host propagates
/// stability to its sibling pillars (paper §4.2.2).
struct CheckpointStable {
  SeqNum seq = 0;
  crypto::Digest digest;
  /// Replicas whose matching votes formed the certificate (>= 2f+1).
  /// Recorded so the host can attach the voter set to stored checkpoint
  /// artifacts for state transfer.
  std::vector<ReplicaId> voters;
};

/// The core moved to a new view (after a completed view change).
struct ViewChanged {
  ViewId view = 0;
};

/// The core observed evidence that it is stranded behind the cluster: peers
/// reference sequence numbers past the local watermark window, or the
/// execution frontier sits below an already-truncated region. Ordinary
/// retransmission cannot recover this — the host should run a
/// checkpoint-based state transfer. Rate-limited by the core.
struct StateTransferNeeded {
  SeqNum observed_seq = 0;
};

using Effect = std::variant<SendTo, Broadcast, Deliver, CheckpointStable,
                            ViewChanged, StateTransferNeeded>;

}  // namespace copbft::protocol
