#include "protocol/messages.hpp"

#include "protocol/wire.hpp"

namespace copbft::protocol {
namespace {

constexpr std::size_t kAuthEntrySize =
    sizeof(crypto::KeyNodeId) + sizeof(crypto::Mac::bytes);  // 4 + 16

std::size_t auth_size(const crypto::Authenticator& a) {
  return 2 + a.entries.size() * kAuthEntrySize;
}

// ---- body writers ----------------------------------------------------

void write_request_body(WireWriter& w, const Request& m) {
  w.u32(m.client);
  w.u64(m.id);
  w.u8(m.flags);
  w.bytes(m.payload);
}

// Requests nested inside proposals/proofs are written in full frame form
// [tag | body | auth] so receivers can verify the client's MAC.
void write_request_full(WireWriter& w, const Request& m) {
  w.u8(static_cast<std::uint8_t>(MsgType::kRequest));
  write_request_body(w, m);
  w.authenticator(m.auth);
}

std::size_t request_full_size(const Request& m) {
  return 1 + 4 + 8 + 1 + 4 + m.payload.size() + auth_size(m.auth);
}

Request read_request_full(WireReader& r) {
  Request m;
  if (r.u8() != static_cast<std::uint8_t>(MsgType::kRequest)) {
    // Force failure: consume past end.
    while (r.ok()) r.u64();
    return m;
  }
  m.client = r.u32();
  m.id = r.u64();
  m.flags = r.u8();
  m.payload = r.bytes();
  m.auth = r.authenticator();
  return m;
}

void write_requests(WireWriter& w, const std::vector<Request>& reqs) {
  w.u32(static_cast<std::uint32_t>(reqs.size()));
  for (const auto& req : reqs) write_request_full(w, req);
}

std::vector<Request> read_requests(WireReader& r) {
  std::uint32_t n = r.u32();
  std::vector<Request> out;
  // Each request occupies >= 20 bytes on the wire; bound allocations.
  if (!r.ok() || r.remaining() / 20 < n) {
    while (r.ok()) r.u64();
    return out;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    out.push_back(read_request_full(r));
  return out;
}

std::size_t requests_size(const std::vector<Request>& reqs) {
  std::size_t total = 4;
  for (const auto& req : reqs) total += request_full_size(req);
  return total;
}

void write_pre_prepare_body(WireWriter& w, const PrePrepare& m) {
  w.u64(m.view);
  w.u64(m.seq);
  w.digest(m.digest);
  write_requests(w, m.requests);
}

void write_pre_prepare_full(WireWriter& w, const PrePrepare& m) {
  w.u8(static_cast<std::uint8_t>(MsgType::kPrePrepare));
  write_pre_prepare_body(w, m);
  w.authenticator(m.auth);
}

std::size_t pre_prepare_full_size(const PrePrepare& m) {
  return 1 + 8 + 8 + 32 + requests_size(m.requests) + auth_size(m.auth);
}

PrePrepare read_pre_prepare_body(WireReader& r) {
  PrePrepare m;
  m.view = r.u64();
  m.seq = r.u64();
  m.digest = r.digest();
  m.requests = read_requests(r);
  return m;
}

void write_proof(WireWriter& w, const PreparedProof& p) {
  w.u64(p.view);
  w.u64(p.seq);
  w.digest(p.digest);
  write_requests(w, p.requests);
}

PreparedProof read_proof(WireReader& r) {
  PreparedProof p;
  p.view = r.u64();
  p.seq = r.u64();
  p.digest = r.digest();
  p.requests = read_requests(r);
  return p;
}

std::size_t proof_size(const PreparedProof& p) {
  return 8 + 8 + 32 + requests_size(p.requests);
}

// Writes [tag | body]; the caller appends the authenticator.
std::size_t write_authenticated_part(WireWriter& w, const Message& msg) {
  w.u8(static_cast<std::uint8_t>(type_of(msg)));
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Request>) {
          write_request_body(w, m);
        } else if constexpr (std::is_same_v<T, PrePrepare>) {
          write_pre_prepare_body(w, m);
        } else if constexpr (std::is_same_v<T, Prepare> ||
                             std::is_same_v<T, Commit>) {
          w.u64(m.view);
          w.u64(m.seq);
          w.digest(m.digest);
          w.u32(m.replica);
        } else if constexpr (std::is_same_v<T, CheckpointMsg>) {
          w.u64(m.seq);
          w.digest(m.digest);
          w.u32(m.replica);
        } else if constexpr (std::is_same_v<T, Reply>) {
          w.u64(m.view);
          w.u32(m.client);
          w.u64(m.id);
          w.u32(m.replica);
          w.bytes(m.result);
        } else if constexpr (std::is_same_v<T, ViewChange>) {
          w.u64(m.new_view);
          w.u64(m.stable_seq);
          w.digest(m.stable_digest);
          w.u32(m.replica);
          w.u32(static_cast<std::uint32_t>(m.prepared.size()));
          for (const auto& p : m.prepared) write_proof(w, p);
        } else if constexpr (std::is_same_v<T, NewView>) {
          w.u64(m.view);
          w.u32(m.replica);
          w.u32(static_cast<std::uint32_t>(m.pre_prepares.size()));
          for (const auto& pp : m.pre_prepares) write_pre_prepare_full(w, pp);
        } else if constexpr (std::is_same_v<T, Fetch>) {
          w.u64(m.view);
          w.u64(m.seq);
          w.u32(m.replica);
        } else if constexpr (std::is_same_v<T, StateRequest>) {
          w.u64(m.min_seq);
          w.u32(m.replica);
        } else if constexpr (std::is_same_v<T, StateReply>) {
          w.u64(m.seq);
          w.digest(m.digest);
          w.u32(static_cast<std::uint32_t>(m.certificate.size()));
          for (ReplicaId voter : m.certificate) w.u32(voter);
          w.u32(m.chunk);
          w.u32(m.chunk_count);
          w.bytes(m.data);
          w.u32(m.replica);
        }
      },
      msg);
  return w.size();
}

}  // namespace

MsgType type_of(const Message& msg) {
  return static_cast<MsgType>(msg.index() + 1);
}

const char* type_name(MsgType type) {
  switch (type) {
    case MsgType::kRequest:
      return "REQUEST";
    case MsgType::kPrePrepare:
      return "PRE-PREPARE";
    case MsgType::kPrepare:
      return "PREPARE";
    case MsgType::kCommit:
      return "COMMIT";
    case MsgType::kCheckpoint:
      return "CHECKPOINT";
    case MsgType::kReply:
      return "REPLY";
    case MsgType::kViewChange:
      return "VIEW-CHANGE";
    case MsgType::kNewView:
      return "NEW-VIEW";
    case MsgType::kFetch:
      return "FETCH";
    case MsgType::kStateRequest:
      return "STATE-REQUEST";
    case MsgType::kStateReply:
      return "STATE-REPLY";
  }
  return "?";
}

crypto::KeyNodeId sender_node(const Message& msg) {
  return std::visit(
      [](const auto& m) -> crypto::KeyNodeId {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Request>) {
          return client_node(m.client);
        } else if constexpr (std::is_same_v<T, PrePrepare>) {
          // The proposer is implied by (view, seq); hosts resolve it via
          // ProtocolConfig::leader_for before verifying.
          return kUnknownNode;
        } else {
          return replica_node(m.replica);
        }
      },
      msg);
}

crypto::Authenticator& authenticator_of(Message& msg) {
  return std::visit(
      [](auto& m) -> crypto::Authenticator& { return m.auth; }, msg);
}

const crypto::Authenticator& authenticator_of(const Message& msg) {
  return std::visit(
      [](const auto& m) -> const crypto::Authenticator& { return m.auth; },
      msg);
}

Bytes encode_message(const Message& msg) {
  Bytes out;
  out.reserve(encoded_size(msg));
  WireWriter w(out);
  write_authenticated_part(w, msg);
  w.authenticator(authenticator_of(msg));
  return out;
}

Bytes encode_authenticated_part(const Message& msg) {
  Bytes out;
  out.reserve(authenticated_size(msg));
  WireWriter w(out);
  write_authenticated_part(w, msg);
  return out;
}

std::size_t authenticated_size(const Message& msg) {
  return encoded_size(msg) - auth_size(authenticator_of(msg));
}

std::size_t encoded_size(const Message& msg) {
  std::size_t body = std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Request>) {
          return 4 + 8 + 1 + 4 + m.payload.size();
        } else if constexpr (std::is_same_v<T, PrePrepare>) {
          return 8 + 8 + 32 + requests_size(m.requests);
        } else if constexpr (std::is_same_v<T, Prepare> ||
                             std::is_same_v<T, Commit>) {
          return 8 + 8 + 32 + 4;
        } else if constexpr (std::is_same_v<T, CheckpointMsg>) {
          return 8 + 32 + 4;
        } else if constexpr (std::is_same_v<T, Reply>) {
          return 8 + 4 + 8 + 4 + 4 + m.result.size();
        } else if constexpr (std::is_same_v<T, ViewChange>) {
          std::size_t n = 8 + 8 + 32 + 4 + 4;
          for (const auto& p : m.prepared) n += proof_size(p);
          return n;
        } else if constexpr (std::is_same_v<T, NewView>) {
          std::size_t n = 8 + 4 + 4;
          for (const auto& pp : m.pre_prepares) n += pre_prepare_full_size(pp);
          return n;
        } else if constexpr (std::is_same_v<T, Fetch>) {
          return 8 + 8 + 4;
        } else if constexpr (std::is_same_v<T, StateRequest>) {
          return 8 + 4;
        } else if constexpr (std::is_same_v<T, StateReply>) {
          return 8 + 32 + 4 + 4 * m.certificate.size() + 4 + 4 + 4 +
                 m.data.size() + 4;
        }
      },
      msg);
  return 1 + body + auth_size(authenticator_of(msg));
}

std::optional<Decoded> decode_message(ByteSpan data) {
  WireReader r(data);
  std::uint8_t tag = r.u8();
  if (!r.ok()) return std::nullopt;

  Message msg;
  switch (static_cast<MsgType>(tag)) {
    case MsgType::kRequest: {
      Request m;
      m.client = r.u32();
      m.id = r.u64();
      m.flags = r.u8();
      m.payload = r.bytes();
      msg = std::move(m);
      break;
    }
    case MsgType::kPrePrepare: {
      msg = read_pre_prepare_body(r);
      break;
    }
    case MsgType::kPrepare: {
      Prepare m;
      m.view = r.u64();
      m.seq = r.u64();
      m.digest = r.digest();
      m.replica = r.u32();
      msg = m;
      break;
    }
    case MsgType::kCommit: {
      Commit m;
      m.view = r.u64();
      m.seq = r.u64();
      m.digest = r.digest();
      m.replica = r.u32();
      msg = m;
      break;
    }
    case MsgType::kCheckpoint: {
      CheckpointMsg m;
      m.seq = r.u64();
      m.digest = r.digest();
      m.replica = r.u32();
      msg = m;
      break;
    }
    case MsgType::kReply: {
      Reply m;
      m.view = r.u64();
      m.client = r.u32();
      m.id = r.u64();
      m.replica = r.u32();
      m.result = r.bytes();
      msg = std::move(m);
      break;
    }
    case MsgType::kViewChange: {
      ViewChange m;
      m.new_view = r.u64();
      m.stable_seq = r.u64();
      m.stable_digest = r.digest();
      m.replica = r.u32();
      std::uint32_t n = r.u32();
      if (!r.ok() || r.remaining() / 48 < n) return std::nullopt;
      m.prepared.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        m.prepared.push_back(read_proof(r));
      msg = std::move(m);
      break;
    }
    case MsgType::kNewView: {
      NewView m;
      m.view = r.u64();
      m.replica = r.u32();
      std::uint32_t n = r.u32();
      if (!r.ok() || r.remaining() / 51 < n) return std::nullopt;
      m.pre_prepares.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        if (r.u8() != static_cast<std::uint8_t>(MsgType::kPrePrepare))
          return std::nullopt;
        PrePrepare pp = read_pre_prepare_body(r);
        pp.auth = r.authenticator();
        m.pre_prepares.push_back(std::move(pp));
      }
      msg = std::move(m);
      break;
    }
    case MsgType::kFetch: {
      Fetch m;
      m.view = r.u64();
      m.seq = r.u64();
      m.replica = r.u32();
      msg = m;
      break;
    }
    case MsgType::kStateRequest: {
      StateRequest m;
      m.min_seq = r.u64();
      m.replica = r.u32();
      msg = m;
      break;
    }
    case MsgType::kStateReply: {
      StateReply m;
      m.seq = r.u64();
      m.digest = r.digest();
      std::uint32_t n = r.u32();
      if (!r.ok() || r.remaining() / 4 < n) return std::nullopt;
      m.certificate.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        m.certificate.push_back(r.u32());
      m.chunk = r.u32();
      m.chunk_count = r.u32();
      m.data = r.bytes();
      m.replica = r.u32();
      msg = std::move(m);
      break;
    }
    default:
      return std::nullopt;
  }

  if (!r.ok()) return std::nullopt;
  std::size_t body_size = r.position();
  authenticator_of(msg) = r.authenticator();
  if (!r.at_end()) return std::nullopt;
  return Decoded{std::move(msg), body_size};
}

Bytes request_authenticated_bytes(const Request& req) {
  Bytes out;
  WireWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kRequest));
  write_request_body(w, req);
  return out;
}

crypto::Digest batch_digest(const crypto::CryptoProvider& crypto,
                            const std::vector<Request>& requests) {
  Bytes buf;
  WireWriter w(buf);
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const auto& req : requests) {
    w.u32(req.client);
    w.u64(req.id);
    w.u8(req.flags);
    w.bytes(req.payload);
  }
  return crypto.digest(buf);
}

}  // namespace copbft::protocol
