# Sanitizer wiring, selected through the COP_SANITIZE cache variable.
#
#   -DCOP_SANITIZE=address,undefined   ASan + UBSan (memory errors, UB)
#   -DCOP_SANITIZE=thread              TSan (data races, lock inversions)
#   -DCOP_SANITIZE=OFF                 plain build (default)
#
# The flags go on every target via add_compile_options so instrumented and
# uninstrumented code never mix (mixing is unsupported for TSan and produces
# false negatives for ASan). Use the `asan-ubsan` / `tsan` presets in
# CMakePresets.json rather than spelling the variable out by hand.

set(COP_SANITIZE "OFF" CACHE STRING
    "Sanitizer set: OFF, or a comma list such as 'address,undefined' or 'thread'")
set_property(CACHE COP_SANITIZE PROPERTY STRINGS
             "OFF" "address,undefined" "address" "undefined" "thread")

if(NOT COP_SANITIZE STREQUAL "OFF" AND NOT COP_SANITIZE STREQUAL "")
  if(COP_SANITIZE MATCHES "thread" AND COP_SANITIZE MATCHES "address")
    message(FATAL_ERROR "TSan cannot be combined with ASan (COP_SANITIZE=${COP_SANITIZE})")
  endif()

  set(_cop_san_flags
      -fsanitize=${COP_SANITIZE}
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all
      -g)
  add_compile_options(${_cop_san_flags})
  add_link_options(-fsanitize=${COP_SANITIZE})

  # Sanitizer runs are about finding bugs, not measuring speed: keep enough
  # optimization that tests finish, but never let NDEBUG strip assertions.
  add_compile_options(-O1)
  add_compile_definitions(COP_SANITIZE_BUILD=1)

  message(STATUS "Sanitizers enabled: ${COP_SANITIZE}")
endif()
