// Banking example: writing your own replicated service.
//
// Implements app::Service directly — a tiny account ledger with transfers
// — and replicates it with COP. Demonstrates:
//   * deterministic service implementation + incremental state digest,
//   * the offloaded pre-validation hook (§4.3.1): malformed transfers are
//     rejected inside the pillar, before they consume an ordering slot,
//   * concurrent clients hammering transfers while invariants hold
//     (the total balance never changes — money moves, it doesn't appear).
#include <atomic>
#include <cstdio>
#include <unordered_map>

#include "client/client.hpp"
#include "core/cop_replica.hpp"
#include "common/rng.hpp"
#include "protocol/wire.hpp"
#include "transport/inproc.hpp"

using namespace copbft;

namespace {

// ---- the service -----------------------------------------------------

enum class BankOp : std::uint8_t { kOpen = 1, kTransfer = 2, kBalance = 3 };

struct BankRequest {
  BankOp op = BankOp::kBalance;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::int64_t amount = 0;

  Bytes encode() const {
    Bytes out;
    protocol::WireWriter w(out);
    w.u8(static_cast<std::uint8_t>(op));
    w.u32(from);
    w.u32(to);
    w.u64(static_cast<std::uint64_t>(amount));
    return out;
  }

  static std::optional<BankRequest> decode(ByteSpan payload) {
    protocol::WireReader r(payload);
    BankRequest req;
    req.op = static_cast<BankOp>(r.u8());
    req.from = r.u32();
    req.to = r.u32();
    req.amount = static_cast<std::int64_t>(r.u64());
    if (!r.at_end()) return std::nullopt;
    if (req.op != BankOp::kOpen && req.op != BankOp::kTransfer &&
        req.op != BankOp::kBalance)
      return std::nullopt;
    return req;
  }
};

class BankService final : public app::Service {
 public:
  explicit BankService(const crypto::CryptoProvider& crypto)
      : crypto_(crypto) {}

  // Runs in the pillar, outside the total order: cheap sanity checks.
  bool pre_validate(const protocol::Request& request) override {
    auto req = BankRequest::decode(request.payload);
    return req && (req->op != BankOp::kTransfer || req->amount > 0);
  }

  Bytes execute(const protocol::Request& request) override {
    auto req = BankRequest::decode(request.payload);
    if (!req) return to_bytes("ERR malformed");
    switch (req->op) {
      case BankOp::kOpen:
        set_balance(req->from, req->amount);
        return to_bytes("OK");
      case BankOp::kTransfer: {
        auto from = accounts_.find(req->from);
        auto to = accounts_.find(req->to);
        if (from == accounts_.end() || to == accounts_.end())
          return to_bytes("ERR no-account");
        if (from->second < req->amount) return to_bytes("ERR insufficient");
        set_balance(req->from, from->second - req->amount);
        set_balance(req->to, accounts_.at(req->to) + req->amount);
        return to_bytes("OK");
      }
      case BankOp::kBalance: {
        auto it = accounts_.find(req->from);
        if (it == accounts_.end()) return to_bytes("ERR no-account");
        return to_bytes(std::to_string(it->second));
      }
    }
    return to_bytes("ERR");
  }

  crypto::Digest state_digest() const override { return digest_; }

  std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& [id, balance] : accounts_) sum += balance;
    return sum;
  }

 private:
  void set_balance(std::uint32_t account, std::int64_t balance) {
    auto it = accounts_.find(account);
    if (it != accounts_.end()) {
      xor_entry(account, it->second);
      it->second = balance;
    } else {
      accounts_.emplace(account, balance);
    }
    xor_entry(account, balance);
  }

  void xor_entry(std::uint32_t account, std::int64_t balance) {
    Bytes buf;
    protocol::WireWriter w(buf);
    w.u32(account);
    w.u64(static_cast<std::uint64_t>(balance));
    crypto::Digest d = crypto_.digest(buf);
    for (std::size_t i = 0; i < digest_.bytes.size(); ++i)
      digest_.bytes[i] ^= d.bytes[i];
  }

  const crypto::CryptoProvider& crypto_;
  std::unordered_map<std::uint32_t, std::int64_t> accounts_;
  crypto::Digest digest_;
};

}  // namespace

int main() {
  auto crypto = crypto::make_real_crypto(99);
  transport::InprocNetwork network;

  core::ReplicaRuntimeConfig config;
  config.num_pillars = 2;
  config.protocol.num_pillars = 2;
  config.protocol.checkpoint_interval = 100;
  config.protocol.window = 400;

  std::vector<std::unique_ptr<core::CopReplica>> replicas;
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    replicas.push_back(std::make_unique<core::CopReplica>(
        r, config, std::make_unique<BankService>(*crypto), *crypto,
        network.endpoint(protocol::replica_node(r))));
    replicas.back()->start();
  }

  client::ClientConfig teller_config;
  teller_config.id = protocol::kClientIdBase;
  teller_config.num_pillars = config.num_pillars;
  client::Client teller(teller_config, *crypto,
                        network.endpoint(protocol::client_node(
                            teller_config.id)));
  teller.start();

  // Open ten accounts with 1000 units each.
  constexpr std::int64_t kInitial = 1000;
  constexpr std::uint32_t kAccounts = 10;
  for (std::uint32_t a = 0; a < kAccounts; ++a)
    teller.invoke(BankRequest{BankOp::kOpen, a, 0, kInitial}.encode());

  // Fire 200 random transfers (some will bounce on insufficient funds —
  // that's fine, rejection is deterministic too).
  Rng rng(123);
  int ok = 0, bounced = 0;
  for (int i = 0; i < 200; ++i) {
    std::uint32_t from = static_cast<std::uint32_t>(rng.below(kAccounts));
    std::uint32_t to = static_cast<std::uint32_t>(rng.below(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    std::int64_t amount = static_cast<std::int64_t>(1 + rng.below(500));
    auto reply =
        teller.invoke(BankRequest{BankOp::kTransfer, from, to, amount}.encode());
    if (reply && to_string(*reply) == "OK")
      ++ok;
    else
      ++bounced;
  }
  std::printf("transfers: %d ok, %d bounced\n", ok, bounced);

  // A malformed transfer is rejected by pre-validation inside the pillar
  // and never ordered; the client simply times out on it, so send a
  // negative-amount transfer async and move on.
  teller.invoke_async(BankRequest{BankOp::kTransfer, 1, 2, -5}.encode(), 0,
                      [](Bytes, std::uint64_t) {});

  auto balance = teller.invoke(BankRequest{BankOp::kBalance, 3, 0, 0}.encode());
  std::printf("account 3 balance: %s\n", to_string(*balance).c_str());

  teller.stop();
  for (auto& replica : replicas) replica->stop();

  // Invariant: money is conserved on every replica, and states agree.
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    const auto& bank =
        dynamic_cast<const BankService&>(replicas[r]->service());
    std::printf("replica %u: total=%lld digest=%s...\n", r,
                static_cast<long long>(bank.total()),
                bank.state_digest().hex().substr(0, 16).c_str());
    if (bank.total() != static_cast<std::int64_t>(kAccounts) * kInitial) {
      std::fprintf(stderr, "money leaked!\n");
      return 1;
    }
  }
  std::printf("conservation of money verified on all replicas.\n");
  return 0;
}
