// Coordination-service example: leader election and service discovery on
// a Byzantine fault-tolerant, ZooKeeper-like namespace (paper §5.3).
//
// Three "worker" clients register ephemeral-style nodes under /workers,
// race to create /leader (the classic lock recipe — creation is totally
// ordered, so exactly one wins), and then everyone discovers the member
// list with a strongly consistent children listing.
#include <cstdio>

#include "app/coordination.hpp"
#include "client/client.hpp"
#include "core/cop_replica.hpp"
#include "transport/inproc.hpp"

using namespace copbft;

namespace {

app::CoordResult call(client::Client& client, app::CoordOpCode op,
                      const std::string& path, Bytes data = {}) {
  auto reply = client.invoke(app::CoordOp{op, path, std::move(data)}.encode());
  if (!reply) {
    std::fprintf(stderr, "invocation failed\n");
    std::exit(1);
  }
  return *app::CoordResult::decode(*reply);
}

}  // namespace

int main() {
  auto crypto = crypto::make_real_crypto(7);
  transport::InprocNetwork network;

  core::ReplicaRuntimeConfig config;
  config.num_pillars = 3;
  config.protocol.num_pillars = 3;
  config.protocol.checkpoint_interval = 100;
  config.protocol.window = 400;

  std::vector<std::unique_ptr<core::CopReplica>> replicas;
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    replicas.push_back(std::make_unique<core::CopReplica>(
        r, config, std::make_unique<app::CoordinationService>(*crypto),
        *crypto, network.endpoint(protocol::replica_node(r))));
    replicas.back()->start();
  }

  // Three workers, each with its own client identity (and thus pillar).
  std::vector<std::unique_ptr<client::Client>> workers;
  for (int w = 0; w < 3; ++w) {
    client::ClientConfig cc;
    cc.id = protocol::kClientIdBase + static_cast<protocol::ClientId>(w);
    cc.num_pillars = config.num_pillars;
    workers.push_back(std::make_unique<client::Client>(
        cc, *crypto, network.endpoint(protocol::client_node(cc.id))));
  }
  for (auto& w : workers) w->start();

  // Set up the namespace.
  call(*workers[0], app::CoordOpCode::kCreate, "/workers");

  // Every worker registers itself.
  for (int w = 0; w < 3; ++w) {
    auto result =
        call(*workers[static_cast<std::size_t>(w)], app::CoordOpCode::kCreate,
             "/workers/worker-" + std::to_string(w),
             to_bytes("endpoint-" + std::to_string(9000 + w)));
    std::printf("worker-%d registered: %s\n", w,
                result.status == app::CoordStatus::kOk ? "ok" : "error");
  }

  // Leader election: everyone tries to create /leader; the total order
  // guarantees exactly one kOk, everyone else sees kNodeExists.
  int leader = -1;
  for (int w = 0; w < 3; ++w) {
    auto result =
        call(*workers[static_cast<std::size_t>(w)], app::CoordOpCode::kCreate,
             "/leader", to_bytes("worker-" + std::to_string(w)));
    if (result.status == app::CoordStatus::kOk) leader = w;
  }
  auto who = call(*workers[0], app::CoordOpCode::kGetData, "/leader");
  std::printf("elected leader: %s (create won by worker-%d)\n",
              to_string(who.payload).c_str(), leader);

  // Service discovery: strongly consistent children listing.
  auto members = call(*workers[2], app::CoordOpCode::kChildren, "/workers");
  std::printf("current members:\n%s\n", to_string(members.payload).c_str());

  // The losing workers watch the leader's data version to detect changes.
  call(*workers[leader >= 0 ? static_cast<std::size_t>(leader) : 0],
       app::CoordOpCode::kSetData, "/leader", to_bytes("stepping-down"));
  auto check = call(*workers[1], app::CoordOpCode::kExists, "/leader");
  std::printf("leader node version after update: %u\n", check.version);

  for (auto& w : workers) w->stop();
  for (auto& replica : replicas) replica->stop();
  std::printf("done.\n");
  return 0;
}
