// Quickstart: a four-replica COP cluster replicating a key-value store,
// all within one process.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface:
//   1. build a cluster-wide crypto provider (pairwise MAC keys),
//   2. wire up a transport (in-process here; TCP works the same way),
//   3. start four CopReplica instances hosting a KvStore service,
//   4. start a client, invoke operations, read the results back.
#include <cstdio>

#include "app/kv_store.hpp"
#include "client/client.hpp"
#include "core/cop_replica.hpp"
#include "transport/inproc.hpp"

using namespace copbft;

int main() {
  // 1. Cryptography: every node derives pairwise HMAC keys from a cluster
  //    master secret (a deployment would provision these via handshakes).
  auto crypto = crypto::make_real_crypto(/*seed=*/2024);

  // 2. Transport: an in-process fabric connecting replicas and clients.
  transport::InprocNetwork network;

  // 3. Replicas: four replicas tolerate f = 1 Byzantine fault. Each runs
  //    two pillars — two independent consensus pipelines whose instances
  //    interleave into one total order (the paper's COP scheme).
  core::ReplicaRuntimeConfig config;
  config.num_pillars = 2;
  config.protocol.num_pillars = 2;
  config.protocol.checkpoint_interval = 100;
  config.protocol.window = 400;

  std::vector<std::unique_ptr<core::CopReplica>> replicas;
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    replicas.push_back(std::make_unique<core::CopReplica>(
        r, config, std::make_unique<app::KvStore>(*crypto), *crypto,
        network.endpoint(protocol::replica_node(r))));
    replicas.back()->start();
  }

  // 4. A client: sends requests to all replicas, accepts a result once
  //    f + 1 = 2 replicas returned matching replies.
  client::ClientConfig client_config;
  client_config.id = protocol::kClientIdBase;
  client_config.num_pillars = config.num_pillars;
  client::Client client(client_config, *crypto,
                        network.endpoint(protocol::client_node(
                            client_config.id)));
  client.start();

  // Write some entries...
  for (int i = 0; i < 5; ++i) {
    app::KvOp put{app::KvOpCode::kPut, "greeting-" + std::to_string(i),
                  to_bytes("hello world #" + std::to_string(i))};
    auto reply = client.invoke(put.encode());
    if (!reply) {
      std::fprintf(stderr, "put failed\n");
      return 1;
    }
    std::printf("put greeting-%d -> status %u\n", i,
                static_cast<unsigned>(app::KvResult::decode(*reply)->status));
  }

  // ...and read one back. The read is totally ordered like the writes, so
  // it is strongly consistent.
  app::KvOp get{app::KvOpCode::kGet, "greeting-3", {}};
  auto reply = client.invoke(get.encode());
  auto result = app::KvResult::decode(*reply);
  std::printf("get greeting-3 -> \"%s\"\n",
              to_string(result->value).c_str());

  std::printf("mean latency: %.0f us over %llu ops\n",
              client.latencies().mean(),
              static_cast<unsigned long long>(client.completed()));

  client.stop();
  for (auto& replica : replicas) replica->stop();

  // All replicas hold identical state — compare their digests.
  std::string digest0 = replicas[0]->service().state_digest().hex();
  for (auto& replica : replicas) {
    if (replica->service().state_digest().hex() != digest0) {
      std::fprintf(stderr, "replica state divergence!\n");
      return 1;
    }
  }
  std::printf("all replicas converged on state %s...\n",
              digest0.substr(0, 16).c_str());
  return 0;
}
