// TCP transport example: the same four-replica COP cluster, but every
// node talks over real TCP sockets on localhost — each pillar lane gets
// its own connection per peer pair and direction (paper §4.2.3).
//
// In a deployment each replica would run in its own process/machine; here
// they share one process for a self-contained demo, but all frames really
// cross the loopback TCP stack.
#include <cstdio>

#include "app/null_service.hpp"
#include "client/client.hpp"
#include "core/cop_replica.hpp"
#include "transport/tcp.hpp"

using namespace copbft;

int main() {
  auto crypto = crypto::make_real_crypto(5);

  constexpr std::uint16_t kBasePort = 42500;
  constexpr std::uint32_t kPillars = 2;
  const protocol::ClientId kClient = protocol::kClientIdBase;

  // Address book: only the replicas listen. The client dials them and its
  // replies ride back over those same connections (event-loop ingress) —
  // no client listen port, no dial-back.
  std::map<crypto::KeyNodeId, transport::TcpPeer> peers;
  for (protocol::ReplicaId r = 0; r < 4; ++r)
    peers[protocol::replica_node(r)] = {"127.0.0.1",
                                        static_cast<std::uint16_t>(kBasePort + r)};

  std::vector<std::unique_ptr<transport::TcpTransport>> transports;
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    transports.push_back(std::make_unique<transport::TcpTransport>(
        protocol::replica_node(r), static_cast<std::uint16_t>(kBasePort + r),
        peers));
    if (!transports.back()->start()) {
      std::fprintf(stderr, "replica %u: failed to listen on port %u\n", r,
                   kBasePort + r);
      return 1;
    }
  }
  auto client_transport = std::make_unique<transport::TcpTransport>(
      protocol::client_node(kClient), /*listen_port=*/0, peers);
  if (!client_transport->start()) {
    std::fprintf(stderr, "client: failed to start\n");
    return 1;
  }

  core::ReplicaRuntimeConfig config;
  config.num_pillars = kPillars;
  config.protocol.num_pillars = kPillars;
  config.protocol.checkpoint_interval = 100;
  config.protocol.window = 400;

  std::vector<std::unique_ptr<core::CopReplica>> replicas;
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    replicas.push_back(std::make_unique<core::CopReplica>(
        r, config, std::make_unique<app::NullService>(32), *crypto,
        *transports[r]));
    replicas.back()->start();
  }

  client::ClientConfig client_config;
  client_config.id = kClient;
  client_config.num_pillars = kPillars;
  client::Client client(client_config, *crypto, *client_transport);
  client.start();

  std::printf("invoking 100 operations over TCP...\n");
  for (int i = 0; i < 100; ++i) {
    auto reply = client.invoke(to_bytes("tcp-op-" + std::to_string(i)));
    if (!reply || reply->size() != 32) {
      std::fprintf(stderr, "operation %d failed\n", i);
      return 1;
    }
  }
  std::printf("100/100 complete; mean latency %.0f us, p99 %llu us\n",
              client.latencies().mean(),
              static_cast<unsigned long long>(client.latencies().percentile(0.99)));

  client.stop();
  for (auto& replica : replicas) replica->stop();
  for (auto& transport : transports) transport->shutdown();
  client_transport->shutdown();
  std::printf("done.\n");
  return 0;
}
